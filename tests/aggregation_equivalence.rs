//! The speculative-parallel aggregation search must be a pure wall-clock
//! optimization: its committed merges, output stream, statistics, and prices
//! are pinned bit-identical to the serial search at every thread count, for
//! both the analytic calibrated model and the real GRAPE optimal-control
//! unit. The batched solve API underneath is pinned exactly-once per unique
//! key under an 8-thread hammer, and the `QCC_THREADS=1` fast path is pinned
//! to run entirely inline on the calling thread.

use qcc::compiler::{aggregate, frontend, AggregationOptions, Compiler, CompilerOptions, Strategy};
use qcc::control::GrapeLatencyModel;
use qcc::hw::{CalibratedLatencyModel, Device, LatencyModel};
use qcc::ir::{Circuit, Instruction};
use qcc::workloads::{ising, qaoa};
use std::sync::Mutex;
use threadpool::ThreadPool;

/// Calibrated pricing that declares itself expensive: the speculative loop
/// only engages for `parallel_pricing()` models, so the calibrated
/// equivalence pins drive it through this wrapper — cheap, deterministic
/// prices with the speculative control flow fully exercised.
struct ParallelCalibrated(CalibratedLatencyModel);

impl LatencyModel for ParallelCalibrated {
    fn isa_gate_latency(&self, inst: &Instruction) -> f64 {
        self.0.isa_gate_latency(inst)
    }

    fn aggregate_latency(&self, constituents: &[Instruction]) -> f64 {
        self.0.aggregate_latency(constituents)
    }

    fn parallel_pricing(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "parallel-calibrated"
    }
}

#[test]
fn speculative_search_matches_serial_bit_for_bit_on_calibrated_workloads() {
    let workloads: Vec<(&str, Circuit)> = vec![
        ("MAXCUT-line-8", qaoa::maxcut_line(8)),
        ("MAXCUT-reg4-8", qaoa::maxcut_reg4(8, 11)),
        ("Ising-chain-8", ising::ising_chain(8)),
    ];
    let model = ParallelCalibrated(CalibratedLatencyModel::asplos19());
    for (name, circuit) in &workloads {
        let instrs = frontend::run(circuit);
        for options in [
            AggregationOptions::default(),
            AggregationOptions::with_width(3),
        ] {
            let (serial_out, serial_stats) =
                aggregate::run_with_pool(&instrs, &model, &options, &ThreadPool::new(1));
            for threads in [4usize, 8] {
                let (out, stats) =
                    aggregate::run_with_pool(&instrs, &model, &options, &ThreadPool::new(threads));
                assert_eq!(
                    out, serial_out,
                    "{name}: stream drifted at {threads} threads"
                );
                assert_eq!(
                    stats, serial_stats,
                    "{name}: stats drifted at {threads} threads"
                );
                assert_eq!(
                    stats.makespan_after.to_bits(),
                    serial_stats.makespan_after.to_bits(),
                    "{name}: makespan bits drifted at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn speculative_search_matches_serial_through_the_grape_unit() {
    // The full compile pipeline on the paper's triangle, GRAPE-priced: the
    // 4- and 8-thread compiles speculate inside the aggregation pass and must
    // still reproduce the single-threaded result bit for bit.
    let circuit = qaoa::paper_triangle_example();
    let device = Device::transmon_line(3);
    let options = CompilerOptions {
        strategy: Strategy::ClsAggregation,
        aggregation: AggregationOptions::with_width(2),
    };
    let serial_model = GrapeLatencyModel::fast_two_qubit();
    let reference = Compiler::new(&device, &serial_model)
        .with_threads(1)
        .compile(&circuit, &options);

    for threads in [4usize, 8] {
        let model = GrapeLatencyModel::fast_two_qubit();
        let result = Compiler::new(&device, &model)
            .with_threads(threads)
            .compile(&circuit, &options);
        assert_eq!(
            result.total_latency_ns.to_bits(),
            reference.total_latency_ns.to_bits(),
            "{threads} threads"
        );
        assert_eq!(result.instructions, reference.instructions);
        assert_eq!(result.latencies.len(), reference.latencies.len());
        for (a, b) in result.latencies.iter().zip(&reference.latencies) {
            assert_eq!(a.to_bits(), b.to_bits(), "{threads} threads");
        }
        assert_eq!(result.aggregation, reference.aggregation);
        // Speculation may price extra candidates, but never the same key
        // twice.
        assert_eq!(
            model.solve_count(),
            model.cached_entries(),
            "{threads} threads: duplicated GRAPE solves"
        );
    }
}

#[test]
fn batch_solve_is_exactly_once_per_unique_key_under_the_8_thread_hammer() {
    let inst = |gate, qubits: &[usize]| Instruction::new(gate, qubits.to_vec());
    use qcc::ir::Gate;
    let workload: Vec<Vec<Instruction>> = vec![
        vec![inst(Gate::X, &[0])],
        vec![inst(Gate::H, &[1])],
        vec![inst(Gate::X, &[0]), inst(Gate::H, &[0])],
        vec![inst(Gate::H, &[0]), inst(Gate::X, &[0])],
        vec![inst(Gate::Rz(0.4), &[2])],
        vec![inst(Gate::X, &[0])], // in-batch duplicate
    ];
    let queries: Vec<&[Instruction]> = workload.iter().map(|c| c.as_slice()).collect();
    let unique_keys = 5;

    let reference = GrapeLatencyModel::fast_two_qubit();
    let expected: Vec<f64> = workload
        .iter()
        .map(|c| reference.aggregate_latency(c))
        .collect();
    assert_eq!(reference.solve_count(), unique_keys);

    // Eight threads hammer one shared model with the same batch, each fanning
    // its own misses over a pool: every distinct key must be solved exactly
    // once across all of them, and every caller sees bit-identical prices.
    let model = GrapeLatencyModel::fast_two_qubit();
    let runs: Vec<Vec<f64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| scope.spawn(|| model.aggregate_latency_batch(&queries, &ThreadPool::new(2))))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("batch thread panicked"))
            .collect()
    });
    for run in &runs {
        for (got, want) in run.iter().zip(&expected) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }
    assert_eq!(model.solve_count(), unique_keys, "duplicated GRAPE solves");
    assert_eq!(model.cached_entries(), unique_keys);
}

#[test]
fn pass_reports_attribute_grape_solves_per_pass() {
    let circuit = qaoa::paper_triangle_example();
    let device = Device::transmon_line(3);
    let model = GrapeLatencyModel::fast_two_qubit();
    let result = Compiler::new(&device, &model).with_threads(1).compile(
        &circuit,
        &CompilerOptions {
            strategy: Strategy::ClsAggregation,
            aggregation: AggregationOptions::with_width(2),
        },
    );
    // An instrumented model yields a pricing delta on every report.
    assert!(result.reports.iter().all(|r| r.pricing.is_some()));
    // Passes that never touch the model report zero activity…
    let flatten = result.report("flatten").unwrap().pricing.unwrap();
    assert_eq!((flatten.queries, flatten.solves), (0, 0));
    // …aggregation does the pricing work…
    let agg = result.report("aggregation").unwrap().pricing.unwrap();
    assert!(agg.queries > 0 && agg.solves > 0);
    // …final-cls re-prices the aggregated stream purely from cache…
    let final_cls = result.report("final-cls").unwrap().pricing.unwrap();
    assert!(final_cls.queries > 0);
    assert_eq!(final_cls.solves, 0);
    assert_eq!(final_cls.cache_hits(), final_cls.queries);
    // …and the price pass is a no-op after final-cls already priced.
    let price = result.report("price").unwrap().pricing.unwrap();
    assert_eq!(price.queries, 0);
    // Per-pass solve deltas account for every solve the model performed.
    let total: usize = result
        .reports
        .iter()
        .map(|r| r.pricing.unwrap().solves)
        .sum();
    assert_eq!(total, model.solve_count());
}

/// Wrapper model recording which thread answered each pricing query —
/// the probe for the `QCC_THREADS=1` inline fast path.
struct RecordingModel {
    inner: CalibratedLatencyModel,
    threads_seen: Mutex<Vec<std::thread::ThreadId>>,
}

impl RecordingModel {
    fn new() -> Self {
        Self {
            inner: CalibratedLatencyModel::asplos19(),
            threads_seen: Mutex::new(Vec::new()),
        }
    }
}

impl LatencyModel for RecordingModel {
    fn isa_gate_latency(&self, inst: &Instruction) -> f64 {
        self.inner.isa_gate_latency(inst)
    }

    fn aggregate_latency(&self, constituents: &[Instruction]) -> f64 {
        self.threads_seen
            .lock()
            .unwrap()
            .push(std::thread::current().id());
        self.inner.aggregate_latency(constituents)
    }

    // Declare pricing expensive so any spawn-happy code path would fan out.
    fn parallel_pricing(&self) -> bool {
        true
    }

    fn name(&self) -> &'static str {
        "recording"
    }
}

#[test]
fn single_thread_budget_runs_the_search_inline_without_spawning() {
    let circuit = qaoa::maxcut_line(8);
    let instrs = frontend::run(&circuit);
    let options = AggregationOptions::default();
    let caller = std::thread::current().id();

    // The aggregation search with a one-thread pool: every model query must
    // happen on the calling thread, and the output must equal the
    // poolless serial entry point.
    let recording = RecordingModel::new();
    let (out, stats) = aggregate::run_with_pool(&instrs, &recording, &options, &ThreadPool::new(1));
    let queries = recording.threads_seen.lock().unwrap().clone();
    assert!(!queries.is_empty());
    assert!(
        queries.iter().all(|&id| id == caller),
        "1-thread search spawned worker threads"
    );
    let (ref_out, ref_stats) =
        aggregate::run(&instrs, &CalibratedLatencyModel::asplos19(), &options);
    assert_eq!(out, ref_out);
    assert_eq!(stats, ref_stats);

    // Same for the batch API: a pool of one prices inline.
    let recording = RecordingModel::new();
    let queries_in: Vec<&[Instruction]> =
        instrs.iter().map(|i| i.constituents.as_slice()).collect();
    recording.aggregate_latency_batch(&queries_in, &ThreadPool::new(1));
    let seen = recording.threads_seen.lock().unwrap();
    assert_eq!(seen.len(), queries_in.len());
    assert!(
        seen.iter().all(|&id| id == caller),
        "1-thread batch pricing spawned worker threads"
    );
}
