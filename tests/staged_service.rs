//! The staged serving layer: `CompileService::serve` must produce results
//! bit-identical to the serial compiler for every strategy and worker count,
//! enforce backpressure (`QueueFull`) on a bounded admission queue, cancel
//! deadline-expired requests between passes, admit interactive requests ahead
//! of batch ones, stream per-pass progress, and keep GRAPE solves
//! exactly-once across a serving session.

use qcc::compiler::{
    AggregationOptions, CompileService, Compiler, CompilerOptions, PassProgress, Priority,
    ServeConfig, ServiceError, Strategy, SubmitOptions,
};
use qcc::control::GrapeLatencyModel;
use qcc::hw::{CalibratedLatencyModel, Device};
use qcc::ir::Circuit;
use qcc::workloads::{ising, qaoa};
use std::time::Duration;
use threadpool::mpmc;

fn serve_workloads(n: usize) -> Vec<Circuit> {
    vec![
        qaoa::maxcut_line(n),
        ising::ising_chain(n),
        qaoa::maxcut_reg4(n, 11),
        ising::ising_chain(n - 1),
    ]
}

#[test]
fn served_results_are_bit_identical_to_serial_for_every_strategy_and_worker_count() {
    let circuits = serve_workloads(6);
    let device = Device::transmon_grid(6);
    let model = CalibratedLatencyModel::new(device.limits);
    let serial = Compiler::new(&device, &model).with_threads(1);
    for strategy in Strategy::all() {
        let options = CompilerOptions::strategy(strategy);
        let references: Vec<_> = circuits
            .iter()
            .map(|c| serial.compile(c, &options))
            .collect();
        for workers in [1usize, 4, 8] {
            // Cache disabled: every request must really flow through the
            // staged pipeline.
            let service = CompileService::new(&device).with_compile_cache(0);
            let config = ServeConfig {
                workers,
                ..ServeConfig::default()
            };
            let served = service.serve(config, |handle| {
                let tickets: Vec<_> = circuits
                    .iter()
                    .map(|c| {
                        handle
                            .submit(c, &options, SubmitOptions::default())
                            .expect("default queue has room")
                    })
                    .collect();
                tickets
                    .into_iter()
                    .map(|t| handle.wait(t).expect("compile succeeds"))
                    .collect::<Vec<_>>()
            });
            for (i, (got, reference)) in served.iter().zip(&references).enumerate() {
                assert_eq!(
                    got.total_latency_ns.to_bits(),
                    reference.total_latency_ns.to_bits(),
                    "{strategy:?}: request {i} at {workers} workers drifted from serial"
                );
                assert_eq!(got.instructions, reference.instructions);
                assert_eq!(got.latencies.len(), reference.latencies.len());
                for (a, b) in got.latencies.iter().zip(&reference.latencies) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{strategy:?}: request {i}");
                }
                assert_eq!(got.swap_count, reference.swap_count);
            }
        }
    }
}

#[test]
fn full_admission_queue_rejects_with_backpressure() {
    let device = Device::transmon_grid(4);
    let service = CompileService::new(&device).with_compile_cache(0);
    let options = CompilerOptions::strategy(Strategy::Cls);
    let a = qaoa::maxcut_line(4);
    let b = ising::ising_chain(4);
    let c = qaoa::maxcut_line(3);
    // A paused session with a size-1 queue: the first submit occupies the
    // only slot (no worker drains it), so the second must be rejected.
    let config = ServeConfig {
        queue_capacity: 1,
        workers: 1,
        start_paused: true,
        ..ServeConfig::default()
    };
    service.serve(config, |handle| {
        let first = handle
            .submit(&a, &options, SubmitOptions::default())
            .expect("first submit fits the queue");
        let rejected = handle.submit(&b, &options, SubmitOptions::default());
        assert_eq!(rejected.unwrap_err(), ServiceError::QueueFull);
        let also_rejected = handle.submit(
            &c,
            &options,
            SubmitOptions::default().priority(Priority::Batch),
        );
        assert_eq!(also_rejected.unwrap_err(), ServiceError::QueueFull);
        // Backpressure is transient: once the queue drains, submits succeed.
        handle.resume();
        assert!(handle.wait(first).is_ok());
        let retried = handle
            .submit(&b, &options, SubmitOptions::default())
            .expect("queue drained, submit fits again");
        assert!(handle.wait(retried).is_ok());
    });
    let stats = service.compile_cache_stats();
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.submitted, 2);
    assert_eq!(stats.completed, 2);
}

#[test]
fn expired_deadlines_cancel_requests_between_passes() {
    let device = Device::transmon_grid(4);
    let service = CompileService::new(&device).with_compile_cache(0);
    let options = CompilerOptions::strategy(Strategy::ClsAggregation);
    let circuit = qaoa::maxcut_line(4);
    let config = ServeConfig {
        workers: 1,
        start_paused: true,
        ..ServeConfig::default()
    };
    let (expired, fine) = service.serve(config, |handle| {
        // Submitted while paused with a deadline that lapses before any
        // worker touches it: the first (admission-time) deadline gate — the
        // same check that runs between every pair of passes — cancels it.
        let doomed = handle
            .submit(
                &circuit,
                &options,
                SubmitOptions::default().deadline(Duration::from_millis(1)),
            )
            .expect("queue has room");
        let relaxed = handle
            .submit(
                &circuit,
                &options,
                SubmitOptions::default().deadline(Duration::from_secs(3600)),
            )
            .expect("queue has room");
        std::thread::sleep(Duration::from_millis(20));
        handle.resume();
        (handle.wait(doomed), handle.wait(relaxed))
    });
    assert_eq!(expired.unwrap_err(), ServiceError::DeadlineExpired);
    assert!(fine.is_ok(), "a generous deadline must not cancel anything");
    let stats = service.compile_cache_stats();
    assert_eq!(stats.deadline_expired, 1);
    assert_eq!(stats.submitted, 2);
    // Terminal outcomes partition: the cancelled request counts under
    // deadline_expired, the finished one under completed.
    assert_eq!(stats.completed, 1);
}

#[test]
fn interactive_requests_are_admitted_before_queued_batch_work() {
    let device = Device::transmon_grid(5);
    let service = CompileService::new(&device).with_compile_cache(0);
    let options = CompilerOptions::strategy(Strategy::Cls);
    let config = ServeConfig {
        workers: 1,
        start_paused: true,
        ..ServeConfig::default()
    };
    service.serve(config, |handle| {
        // Queue three batch requests first, then one interactive request.
        // With admission paused nothing has started, so on resume the single
        // worker must pick the interactive one first.
        let batch: Vec<_> = (3..6)
            .map(|n| {
                handle
                    .submit(
                        &ising::ising_chain(n),
                        &options,
                        SubmitOptions::default().priority(Priority::Batch),
                    )
                    .expect("queue has room")
            })
            .collect();
        let urgent = handle
            .submit(
                &qaoa::maxcut_line(5),
                &options,
                SubmitOptions::default().priority(Priority::Interactive),
            )
            .expect("queue has room");
        handle.resume();
        for t in &batch {
            assert!(handle.wait(*t).is_ok());
        }
        assert!(handle.wait(urgent).is_ok());
        let order = handle.completion_order();
        assert_eq!(
            order.first(),
            Some(&urgent),
            "the interactive request must finish before any batch request: {order:?}"
        );
    });
}

#[test]
fn progress_streams_one_report_per_pass_in_recipe_order() {
    let device = Device::transmon_grid(4);
    let service = CompileService::new(&device).with_compile_cache(0);
    let strategy = Strategy::ClsAggregation;
    let options = CompilerOptions::strategy(strategy);
    let circuit = qaoa::maxcut_line(4);
    let expected = strategy.pipeline().pass_names();
    let (tx, rx) = mpmc::bounded::<PassProgress>(64);
    let ticket = service.serve(ServeConfig::default(), |handle| {
        let ticket = handle
            .submit(&circuit, &options, SubmitOptions::default().progress(tx))
            .expect("queue has room");
        handle.wait(ticket).expect("compile succeeds");
        ticket
    });
    let events = rx.drain();
    assert_eq!(
        events.iter().map(|e| e.report.pass).collect::<Vec<_>>(),
        expected,
        "one progress event per pass, in recipe order"
    );
    assert!(events.iter().all(|e| e.ticket == ticket));
}

#[test]
fn serving_sessions_keep_grape_solves_exactly_once() {
    let circuits: Vec<Circuit> = (0..4).map(|_| qaoa::paper_triangle_example()).collect();
    let device = Device::transmon_line(3);
    let options = CompilerOptions {
        strategy: Strategy::ClsAggregation,
        aggregation: AggregationOptions::with_width(2),
    };
    let model = GrapeLatencyModel::fast_two_qubit();
    // Borrow the model into the service so its solve counters stay readable.
    let service = CompileService::with_model(&device, Box::new(&model)).with_compile_cache(0);
    let served = service.serve(ServeConfig::default(), |handle| {
        let tickets: Vec<_> = circuits
            .iter()
            .map(|c| {
                handle
                    .submit(c, &options, SubmitOptions::default())
                    .expect("queue has room")
            })
            .collect();
        tickets
            .into_iter()
            .map(|t| handle.wait(t).expect("compile succeeds"))
            .collect::<Vec<_>>()
    });
    assert_eq!(
        model.solve_count(),
        model.cached_entries(),
        "every GRAPE key must be solved exactly once across the session"
    );
    let reference_model = GrapeLatencyModel::fast_two_qubit();
    let reference = Compiler::new(&device, &reference_model)
        .with_threads(1)
        .compile(&circuits[0], &options);
    for (i, r) in served.iter().enumerate() {
        assert_eq!(
            r.total_latency_ns.to_bits(),
            reference.total_latency_ns.to_bits(),
            "served request {i} drifted from the serial compile"
        );
    }
}

#[test]
fn service_batch_rides_the_staged_path_and_counts_requests() {
    let circuits = serve_workloads(6);
    let device = Device::transmon_grid(6);
    let service = CompileService::new(&device).with_threads(4);
    let options = CompilerOptions::strategy(Strategy::ClsAggregation);
    let results = service.compile_batch(&circuits, &options);
    assert!(results.iter().all(|r| r.is_ok()));
    let stats = service.compile_cache_stats();
    assert_eq!(stats.submitted, circuits.len());
    assert_eq!(stats.completed, circuits.len());
    assert_eq!(stats.rejected, 0);
    // A repeat batch is answered from the compile cache but still counted.
    let again = service.compile_batch(&circuits, &options);
    assert!(again.iter().all(|r| r.is_ok()));
    let stats = service.compile_cache_stats();
    assert_eq!(stats.submitted, 2 * circuits.len());
    assert_eq!(stats.completed, 2 * circuits.len());
}
