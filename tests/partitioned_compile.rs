//! The partitioned-compilation subsystem, pinned against whole-circuit
//! compilation: `k = 1` (and every non-aggregating strategy at any `k`) must
//! be **bit-identical**, aggregating strategies at `k ∈ {2, 4}` must preserve
//! the constituent-gate multiset — and, without a post-aggregation reordering
//! pass, the per-qubit gate order — while `ClsAggregation` stays semantically
//! equivalent under the simulator with a bounded makespan. GRAPE solves stay
//! exactly-once across concurrent region compiles, partitioned requests get
//! their own compile-cache keys, and a fleet fan-out conserves every gate.

use proptest::prelude::*;
use qcc::compiler::{
    persist, verify_compilation, CompilationResult, CompileService, Compiler, CompilerOptions,
    Fleet, FleetSubmitOptions, PartitionOptions, Strategy,
};
use qcc::control::GrapeLatencyModel;
use qcc::hw::{Backend, CalibratedLatencyModel, Device};
use qcc::ir::{Circuit, Gate, Instruction};
use qcc::workloads::{ising, qaoa};
use std::collections::HashMap;

fn workloads() -> Vec<(&'static str, Circuit)> {
    vec![
        ("QAOA-triangle", qaoa::paper_triangle_example()),
        ("MAXCUT-reg4-8", qaoa::maxcut_reg4(8, 7)),
        ("Ising-chain-8", ising::ising_chain(8)),
    ]
}

fn compile_both(
    circuit: &Circuit,
    strategy: Strategy,
    k: usize,
) -> (CompilationResult, CompilationResult) {
    compile_both_on(
        Device::transmon_grid(circuit.n_qubits()),
        circuit,
        strategy,
        k,
    )
}

fn compile_both_on(
    device: Device,
    circuit: &Circuit,
    strategy: Strategy,
    k: usize,
) -> (CompilationResult, CompilationResult) {
    let model = CalibratedLatencyModel::new(device.limits);
    let compiler = Compiler::new(&device, &model);
    let options = CompilerOptions::strategy(strategy);
    let whole = compiler.compile(circuit, &options);
    let part = compiler
        .compile_partitioned(circuit, &options, &PartitionOptions::new(k))
        .expect("partitioned compile succeeds");
    (whole, part)
}

/// Bit-level equality via the canonical codec, with the fields that
/// legitimately differ between the two pipelines stripped: per-pass reports
/// (the partitioned recipe has a "partition" pass where the whole recipe has
/// "aggregation") and the partition telemetry itself.
fn artifact_bits(r: &CompilationResult) -> Vec<u8> {
    let mut stripped = r.clone();
    stripped.reports.clear();
    stripped.partition = None;
    let mut bytes = Vec::new();
    persist::encode_result(&stripped, &mut bytes);
    bytes
}

fn instruction_bytes(inst: &Instruction) -> Vec<u8> {
    let mut bytes = Vec::new();
    inst.encode_into(&mut bytes);
    bytes
}

/// The constituent-gate multiset of the final program (sorted encodings).
fn gate_multiset(r: &CompilationResult) -> Vec<Vec<u8>> {
    let mut gates: Vec<Vec<u8>> = r
        .instructions
        .iter()
        .flat_map(|i| i.constituents.iter())
        .map(instruction_bytes)
        .collect();
    gates.sort();
    gates
}

/// Per-physical-qubit sequence of constituent gates, in stream order.
fn per_qubit_order(r: &CompilationResult) -> HashMap<usize, Vec<Vec<u8>>> {
    let mut order: HashMap<usize, Vec<Vec<u8>>> = HashMap::new();
    for agg in &r.instructions {
        for inst in &agg.constituents {
            for &q in &inst.qubits {
                order.entry(q).or_default().push(instruction_bytes(inst));
            }
        }
    }
    order
}

#[test]
fn k1_is_bit_identical_to_whole_compile_for_every_strategy() {
    for (name, circuit) in workloads() {
        for strategy in Strategy::all() {
            let (whole, part) = compile_both(&circuit, strategy, 1);
            assert_eq!(
                artifact_bits(&whole),
                artifact_bits(&part),
                "{name}/{strategy}: k=1 must be bit-identical"
            );
            let summary = part.partition.expect("partitioned result has telemetry");
            assert_eq!(summary.requested_regions, 1);
            assert_eq!(summary.regions.len(), 1);
            assert_eq!(summary.cut_instructions, 0);
            assert_eq!(summary.cut_weight, 0.0);
        }
    }
}

#[test]
fn non_aggregating_strategies_are_bit_identical_at_every_k() {
    // Without aggregation there is nothing to parallelize per region: the
    // partition pass is telemetry-only and must not perturb the stream.
    for (name, circuit) in workloads() {
        for strategy in [
            Strategy::IsaBaseline,
            Strategy::Cls,
            Strategy::ClsHandOptimized,
        ] {
            for k in [2usize, 4] {
                let (whole, part) = compile_both(&circuit, strategy, k);
                assert_eq!(
                    artifact_bits(&whole),
                    artifact_bits(&part),
                    "{name}/{strategy}: k={k} must be bit-identical"
                );
            }
        }
    }
}

#[test]
fn aggregation_only_preserves_multiset_and_per_qubit_order_at_k2_k4() {
    for (name, circuit) in workloads() {
        for k in [2usize, 4] {
            let (whole, part) = compile_both(&circuit, Strategy::AggregationOnly, k);
            assert_eq!(
                gate_multiset(&whole),
                gate_multiset(&part),
                "{name}: k={k} gate multiset drifted"
            );
            assert_eq!(
                per_qubit_order(&whole),
                per_qubit_order(&part),
                "{name}: k={k} per-qubit gate order drifted"
            );
            let summary = part.partition.expect("partitioned result has telemetry");
            assert_eq!(summary.requested_regions, k);
            assert!(!summary.regions.is_empty() && summary.regions.len() <= k);
            // Region qubit sets are disjoint and cover (at least) the
            // circuit's qubits — the plan spans the whole device.
            let mut all: Vec<usize> = summary
                .regions
                .iter()
                .flat_map(|r| r.qubits.iter().copied())
                .collect();
            let total = all.len();
            all.sort_unstable();
            all.dedup();
            assert_eq!(all.len(), total, "{name}: k={k} regions must be disjoint");
            assert!(
                all.len() >= circuit.n_qubits(),
                "{name}: k={k} regions must cover"
            );
        }
    }
}

#[test]
fn cls_aggregation_is_semantically_equivalent_at_k2_k4() {
    // Line devices: the simulator check needs every physical qubit used (a
    // grid's spare corner qubit breaks its permutation alignment — a
    // pre-existing verifier limitation unrelated to partitioning).
    for (name, circuit) in workloads() {
        let line = || Device::transmon_line(circuit.n_qubits());
        let isa = compile_both_on(line(), &circuit, Strategy::IsaBaseline, 1).0;
        let (whole, _) = compile_both_on(line(), &circuit, Strategy::ClsAggregation, 1);
        for k in [2usize, 4] {
            let (_, part) = compile_both_on(line(), &circuit, Strategy::ClsAggregation, k);
            assert_eq!(
                gate_multiset(&whole),
                gate_multiset(&part),
                "{name}: k={k} gate multiset drifted"
            );
            let check = verify_compilation(&circuit, &part);
            assert!(
                check.equivalent,
                "{name}: k={k} not equivalent (max deviation {})",
                check.max_deviation
            );
            // Partitioning trades some aggregation scope (merges cannot cross
            // cut barriers) for parallelism; the makespan must stay within a
            // modest factor of the whole-circuit compile and must never
            // regress past the unaggregated baseline.
            let bound = (whole.total_latency_ns * 1.6).max(isa.total_latency_ns * 1.05);
            assert!(
                part.total_latency_ns <= bound,
                "{name}: k={k} makespan {} exceeds bound {bound} (whole {}, isa {})",
                part.total_latency_ns,
                whole.total_latency_ns,
                isa.total_latency_ns
            );
        }
    }
}

#[test]
fn grape_solves_stay_exactly_once_across_concurrent_region_compiles() {
    let circuit = qaoa::maxcut_reg4(6, 3);
    let device = Device::transmon_grid(6);
    let options = CompilerOptions::strategy(Strategy::ClsAggregation);
    let model = GrapeLatencyModel::fast_two_qubit();
    let compiler = Compiler::new(&device, &model).with_threads(8);
    let first = compiler
        .compile_partitioned(&circuit, &options, &PartitionOptions::new(2))
        .expect("partitioned compile succeeds");
    assert!(first.partition.is_some());
    assert_eq!(
        model.solve_count(),
        model.cached_entries(),
        "concurrent region compiles duplicated GRAPE solves"
    );
    let solves = model.solve_count();
    // Replaying the same request prices the same physical-index instruction
    // bytes — every key is already cached, zero new solves.
    compiler
        .compile_partitioned(&circuit, &options, &PartitionOptions::new(2))
        .expect("partitioned compile succeeds");
    assert_eq!(
        model.solve_count(),
        solves,
        "replay must be pure cache hits"
    );
    // Other region cuts and the whole-circuit compile explore different
    // merge candidates (new keys are fine) but still never solve one twice.
    compiler
        .compile_partitioned(&circuit, &options, &PartitionOptions::new(4))
        .expect("partitioned compile succeeds");
    let whole = compiler.compile(&circuit, &options);
    assert_eq!(
        model.solve_count(),
        model.cached_entries(),
        "cross-k compiles duplicated GRAPE solves"
    );
    assert_eq!(gate_multiset(&whole), gate_multiset(&first));
}

#[test]
fn service_counts_and_caches_partitioned_requests_under_their_own_keys() {
    let circuit = qaoa::paper_triangle_example();
    let device = Device::transmon_grid(3);
    let service = CompileService::new(&device);
    let options = CompilerOptions::strategy(Strategy::ClsAggregation);
    let partition = PartitionOptions::new(2);

    let first = service
        .compile_partitioned(&circuit, &options, &partition)
        .expect("partitioned compile succeeds");
    let regions = first.partition.as_ref().expect("telemetry").regions.len();
    let replay = service
        .compile_partitioned(&circuit, &options, &partition)
        .expect("cache hit");
    assert_eq!(artifact_bits(&first), artifact_bits(&replay));

    // A whole-circuit request for the same circuit must not read the
    // partitioned entry (nor vice versa): distinct keys, so a fresh miss.
    let whole = service.compile(&circuit, &options).expect("compile");
    assert!(whole.partition.is_none());

    let stats = service.compile_cache_stats();
    assert_eq!(stats.partitioned, 2, "both partitioned requests counted");
    assert_eq!(stats.partition_regions, regions, "hit did not recompile");
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 2, "partitioned and whole keys are distinct");
    assert_eq!(stats.submitted, 3);
    assert_eq!(stats.completed, 3);
}

#[test]
fn fleet_partitioned_submission_fans_out_and_conserves_gates() {
    let backends = vec![
        Backend::calibrated("east", Device::transmon_grid(6)),
        Backend::calibrated("west", Device::transmon_grid(6)),
    ];
    let mut fleet = Fleet::new(&backends);
    let circuit = qaoa::maxcut_reg4(8, 11);
    let options = CompilerOptions::strategy(Strategy::Cls);
    let submission = fleet.submit_partitioned(
        &circuit,
        &options,
        &PartitionOptions::new(2),
        FleetSubmitOptions::default(),
    );
    assert_eq!(submission.tickets.len(), submission.regions.len());
    assert!(submission.regions.len() >= 2, "wide circuit fans out");
    // Conservation: every flattened gate lands in exactly one region
    // sub-circuit or the explicit cut set.
    let flattened: usize = qcc::compiler::frontend::lower(&circuit)
        .iter()
        .map(|i| i.constituents.len())
        .sum();
    let region_gates: usize = submission.regions.iter().map(|r| r.circuit.len()).sum();
    assert_eq!(region_gates + submission.cut.len(), flattened);
    assert!(submission.cut_weight > 0.0, "reg4 cannot split losslessly");
    // Every region compiles on some backend — and fits devices the whole
    // 8-qubit circuit would overflow.
    for (ticket, region) in submission.tickets.iter().zip(&submission.regions) {
        assert!(region.circuit.n_qubits() <= 6);
        let result = fleet.wait(*ticket).expect("region compile succeeds");
        assert_eq!(
            result
                .instructions
                .iter()
                .map(|i| i.gate_count())
                .sum::<usize>()
                - result.swap_count,
            region.circuit.len(),
            "region program carries exactly its gates (plus routing SWAPs)"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random circuits, every k: partition→stitch must preserve the per-qubit
    /// gate order and the gate multiset of the whole-circuit compile.
    #[test]
    fn random_circuits_preserve_per_qubit_order_through_partition_and_stitch(
        n in 2usize..7,
        k in 1usize..5,
        ops in prop::collection::vec((0u8..4, 0usize..64, 1usize..64), 1..40),
    ) {
        let mut circuit = Circuit::new(n);
        for (op, a, b) in ops {
            let a = a % n;
            match op {
                0 => {
                    circuit.push(Gate::H, &[a]);
                }
                1 => {
                    circuit.push(Gate::X, &[a]);
                }
                2 => {
                    circuit.push(Gate::Rz(0.3), &[a]);
                }
                _ => {
                    let b = (a + b % (n - 1) + 1) % n;
                    circuit.push(Gate::Cnot, &[a, b]);
                }
            }
        }
        let (whole, part) = compile_both(&circuit, Strategy::AggregationOnly, k);
        prop_assert_eq!(gate_multiset(&whole), gate_multiset(&part));
        prop_assert_eq!(per_qubit_order(&whole), per_qubit_order(&part));
    }
}
