//! The fleet dispatch layer: cost-model routing must hand each request to one
//! backend and produce results bit-identical to compiling directly against
//! that backend; routing must be deterministic for a fixed submission trace
//! at any thread count; skewed backlog must trigger SHIFT-style relocation of
//! still-queued tickets without ever double-compiling; and GRAPE solves must
//! stay exactly-once per (backend, instruction key) across the whole fleet.

use qcc::compiler::{
    CompilationResult, Compiler, CompilerOptions, Fleet, FleetSubmitOptions, Priority, Strategy,
};
use qcc::control::{GrapeConfig, GrapeLatencyModel};
use qcc::hw::{Backend, ControlLimits, Device, Topology};
use qcc::ir::Circuit;
use qcc::workloads::{ising, qaoa};
use std::sync::Arc;

/// Three deliberately dissimilar backends: a line, a slower-calibrated grid,
/// and a double-capacity all-to-all device.
fn heterogeneous_backends() -> Vec<Backend> {
    let limits = ControlLimits::asplos19();
    vec![
        Backend::calibrated("line-6", Device::transmon_line(6)),
        Backend::calibrated(
            "grid-6-slow",
            Device::transmon_with(Topology::near_square_grid(6), limits.scaled_drives(0.8)),
        ),
        Backend::calibrated(
            "wide-8",
            Device::transmon_with(Topology::AllToAll(8), limits),
        )
        .with_capacity_weight(2.0),
    ]
}

fn trace_circuits() -> Vec<Circuit> {
    vec![
        qaoa::maxcut_line(6),
        ising::ising_chain(5),
        qaoa::maxcut_reg4(6, 11),
        ising::ising_chain(4),
    ]
}

fn assert_bit_identical(a: &CompilationResult, b: &CompilationResult, what: &str) {
    assert_eq!(a.instructions, b.instructions, "{what}: instructions");
    assert_eq!(
        a.latencies.len(),
        b.latencies.len(),
        "{what}: latency count"
    );
    for (i, (x, y)) in a.latencies.iter().zip(&b.latencies).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: latency {i}");
    }
    assert_eq!(
        a.total_latency_ns.to_bits(),
        b.total_latency_ns.to_bits(),
        "{what}: total latency"
    );
    assert_eq!(a.swap_count, b.swap_count, "{what}: swap count");
}

#[test]
fn routed_results_are_bit_identical_to_direct_compiles_for_every_strategy() {
    let backends = heterogeneous_backends();
    let circuits = trace_circuits();
    let mut fleet = Fleet::new(&backends);
    let mut submitted = Vec::new();
    for strategy in Strategy::all() {
        let options = CompilerOptions::strategy(strategy);
        for circuit in &circuits {
            let ticket = fleet.submit(circuit, &options);
            submitted.push((ticket, circuit.clone(), options.clone()));
        }
    }
    assert_eq!(fleet.routing_log().len(), submitted.len());
    for (i, (ticket, circuit, options)) in submitted.into_iter().enumerate() {
        assert_eq!(
            fleet.routing_log()[i].ticket,
            ticket,
            "log is in submission order"
        );
        // `placement` is the final lane (relocations included); the routing
        // log keeps the initial decision.
        let label = fleet
            .placement(ticket)
            .expect("ticket was placed")
            .to_string();
        let routed = fleet.wait(ticket).expect("fleet compile succeeds");
        let backend = backends
            .iter()
            .find(|b| b.label() == label)
            .expect("placement names a fleet backend");
        let direct = Compiler::for_backend(backend)
            .with_threads(1)
            .compile(&circuit, &options);
        assert_bit_identical(
            &routed,
            &direct,
            &format!("{:?} on {}", options.strategy, backend.label()),
        );
    }
}

#[test]
fn routing_is_deterministic_for_a_fixed_trace_at_any_thread_count() {
    let backends = heterogeneous_backends();
    let circuits = trace_circuits();
    let run_trace = |threads: usize| {
        let mut fleet = Fleet::new(&backends).with_threads(threads);
        let mut tickets = Vec::new();
        for (i, strategy) in Strategy::all().into_iter().enumerate() {
            let options = CompilerOptions::strategy(strategy);
            for (j, circuit) in circuits.iter().enumerate() {
                let submit = if (i + j) % 2 == 0 {
                    FleetSubmitOptions::default()
                } else {
                    FleetSubmitOptions::default().priority(Priority::Batch)
                };
                tickets.push(fleet.submit_with(circuit, &options, submit));
            }
        }
        // One pinned straggler exercises the pinned path in the log.
        tickets.push(fleet.submit_with(
            &circuits[0],
            &CompilerOptions::strategy(Strategy::Cls),
            FleetSubmitOptions::default().pin("wide-8"),
        ));
        let log = fleet.routing_log().to_vec();
        let relocations = fleet.relocations().to_vec();
        fleet.run();
        let stats = fleet.stats();
        let results: Vec<Vec<u64>> = tickets
            .into_iter()
            .map(|t| {
                fleet
                    .wait(t)
                    .expect("fleet compile succeeds")
                    .latencies
                    .iter()
                    .map(|l| l.to_bits())
                    .collect()
            })
            .collect();
        (log, relocations, stats, results)
    };
    let reference = run_trace(1);
    for threads in [4, 8] {
        let run = run_trace(threads);
        assert_eq!(reference.0, run.0, "routing log at {threads} threads");
        assert_eq!(reference.1, run.1, "relocations at {threads} threads");
        assert_eq!(reference.2, run.2, "fleet stats at {threads} threads");
        assert_eq!(reference.3, run.3, "result bits at {threads} threads");
    }
    let pinned = reference.0.last().expect("non-empty log");
    assert!(pinned.pinned, "last decision is the pinned submit");
    assert_eq!(pinned.backend, "wide-8");
    assert!(pinned.candidates.is_empty(), "pinned submits skip quoting");
}

#[test]
fn capacity_derate_relocates_queued_tickets_without_double_compiling() {
    let limits = ControlLimits::asplos19();
    let backends = vec![
        Backend::calibrated("twin-a", Device::transmon_line(8)),
        Backend::calibrated("twin-b", Device::transmon_line(8)),
    ];
    let mut fleet = Fleet::new(&backends);
    let options = CompilerOptions::strategy(Strategy::Cls);
    let mut tickets = Vec::new();
    // Distinct circuits so the per-lane compile caches cannot mask a double
    // compile. Twin backends make the router alternate lanes.
    let circuits: Vec<Circuit> = (3..9).map(ising::ising_chain).collect();
    for circuit in &circuits {
        tickets.push(fleet.submit(circuit, &options));
    }
    let pinned = fleet.submit_with(
        &qaoa::maxcut_line(5),
        &options,
        FleetSubmitOptions::default().pin("twin-a"),
    );
    assert!(
        fleet.relocations().is_empty(),
        "balanced twins must not churn"
    );
    let queued_on_a = fleet.backend_stats("twin-a").unwrap().queued;
    assert!(queued_on_a >= 2, "router should have used both twins");

    // The SHIFT signal: twin-a's capacity collapses, so its queued unpinned
    // tickets must migrate to twin-b. The pinned ticket stays put.
    fleet.set_capacity_weight("twin-a", 1e-6);
    let moved = fleet.relocations().len();
    assert!(moved >= 1, "derate must trigger at least one relocation");
    for relocation in fleet.relocations() {
        assert_eq!(relocation.from, "twin-a");
        assert_eq!(relocation.to, "twin-b");
        assert!(relocation.gain_ns > 0.0);
    }
    let stats_a = fleet.backend_stats("twin-a").unwrap();
    let stats_b = fleet.backend_stats("twin-b").unwrap();
    assert_eq!(stats_a.relocated_out, moved);
    assert_eq!(stats_b.relocated_in, moved);
    assert_eq!(stats_a.queued, 1, "only the pinned ticket may remain");

    fleet.run();
    for ticket in tickets {
        fleet.wait(ticket).expect("relocated compile succeeds");
    }
    let relocated_result = fleet.wait(pinned).expect("pinned compile succeeds");
    let direct = Compiler::for_backend(&backends[0])
        .with_threads(1)
        .compile(&qaoa::maxcut_line(5), &options);
    assert_bit_identical(&relocated_result, &direct, "pinned ticket on twin-a");

    // Exactly one lane compiled each ticket: the per-lane service counters
    // must sum to the number of fleet submissions, with twin-a serving only
    // its pinned ticket.
    let cache_a = fleet.cache_stats("twin-a").unwrap();
    let cache_b = fleet.cache_stats("twin-b").unwrap();
    assert_eq!(
        cache_a.submitted, 1,
        "twin-a compiled only the pinned ticket"
    );
    assert_eq!(
        cache_a.submitted + cache_b.submitted,
        circuits.len() + 1,
        "every ticket compiled exactly once across the fleet"
    );
    assert_eq!(cache_a.completed + cache_b.completed, circuits.len() + 1);
    let _ = limits;
}

#[test]
fn grape_solves_stay_exactly_once_per_backend_across_the_fleet() {
    let device_a = Device::transmon_line(5);
    let device_b = Device::transmon_grid(5);
    let model_a = Arc::new(GrapeLatencyModel::fast_two_qubit());
    let model_b = Arc::new(GrapeLatencyModel::new(
        ControlLimits::asplos19(),
        GrapeConfig {
            seed: 99,
            ..GrapeConfig::fast()
        },
        2,
    ));
    let backends = vec![
        Backend::with_model("grape-a", device_a, model_a.clone()),
        Backend::with_model("grape-b", device_b, model_b.clone()),
    ];
    let mut fleet = Fleet::new(&backends);
    let options = CompilerOptions::strategy(Strategy::ClsAggregation);
    // Duplicated circuits in one trace: the duplicates must hit the caches,
    // not re-solve.
    let circuits = [
        ising::ising_chain(4),
        qaoa::maxcut_line(5),
        ising::ising_chain(4),
        qaoa::maxcut_line(5),
    ];
    let tickets: Vec<_> = circuits.iter().map(|c| fleet.submit(c, &options)).collect();
    assert_eq!(
        model_a.solve_count() + model_b.solve_count(),
        0,
        "cost-model routing must not trigger GRAPE solves"
    );
    for ticket in tickets {
        fleet.wait(ticket).expect("grape-priced compile succeeds");
    }
    for (label, model) in [("grape-a", &model_a), ("grape-b", &model_b)] {
        assert_eq!(
            model.solve_count(),
            model.cached_entries(),
            "{label}: every cached key solved exactly once"
        );
    }
    let solves_after_first = (model_a.solve_count(), model_b.solve_count());

    // Replaying the same trace (pinned to the same lanes) must be pure cache
    // hits on both backends.
    let replay: Vec<_> = circuits
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let lane = fleet.routing_log()[i].backend.clone();
            fleet.submit_with(c, &options, FleetSubmitOptions::default().pin(lane))
        })
        .collect();
    for ticket in replay {
        fleet.wait(ticket).expect("replayed compile succeeds");
    }
    assert_eq!(
        (model_a.solve_count(), model_b.solve_count()),
        solves_after_first,
        "replay must not re-solve any (backend, key) pair"
    );
}
