//! Fig. 6: the instruction stream evolves through the compilation stages —
//! flattening, commutativity detection, scheduling/mapping, aggregation — and
//! each stage both shrinks the schedule and preserves the computation.

use qcc::compiler::{frontend, Compiler, CompilerOptions, InstructionOrigin, Strategy};
use qcc::hw::{CalibratedLatencyModel, Device};
use qcc::workloads::qaoa;

#[test]
fn stage_snapshots_follow_fig6() {
    let circuit = qaoa::paper_triangle_example();
    let device = Device::transmon_line(3);
    let model = CalibratedLatencyModel::new(device.limits);
    let compiler = Compiler::new(&device, &model);
    let result = compiler.compile(
        &circuit,
        &CompilerOptions::strategy(Strategy::ClsAggregation),
    );

    let stage = |name: &str| {
        result
            .report(name)
            .unwrap_or_else(|| panic!("missing pass report {name}"))
    };

    // Fig. 6a → 6b: detection contracts the three CNOT–Rz–CNOT structures, so
    // the instruction count drops by 2 per block while gates are conserved.
    let flatten = stage("flatten");
    let detect = stage("commutativity-detection");
    assert_eq!(flatten.gates, detect.gates);
    assert_eq!(flatten.instructions - detect.instructions, 3 * 2);

    // Fig. 6c: routing adds a SWAP for the non-adjacent triangle edge.
    let route = stage("route");
    assert!(route.gates > detect.gates);

    // Fig. 6d: aggregation reduces the instruction count further without
    // losing gates.
    let agg = stage("aggregation");
    assert!(agg.instructions < route.instructions);
    assert_eq!(agg.gates, route.gates);
}

#[test]
fn diagonal_blocks_appear_exactly_where_expected() {
    let circuit = qaoa::paper_triangle_example();
    let instrs = frontend::run(&circuit);
    let blocks: Vec<_> = instrs
        .iter()
        .filter(|i| i.origin == InstructionOrigin::DiagonalBlock)
        .collect();
    assert_eq!(blocks.len(), 3, "one block per triangle edge");
    for b in &blocks {
        assert_eq!(b.gate_count(), 3);
        assert!(b.is_diagonal());
        assert_eq!(b.width(), 2);
    }
    // Blocks on different edges commute — the freedom Fig. 6b illustrates.
    assert!(blocks[0].commutes_with(blocks[1]));
    assert!(blocks[1].commutes_with(blocks[2]));
}
