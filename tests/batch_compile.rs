//! The batch front door: `Compiler::compile_batch` / `CompileService` must be
//! deterministic under the thread-pool fan-out — batch results across ≥4
//! threads are bit-identical to compiling each circuit serially — and must
//! share the latency cache so every distinct GRAPE key is solved exactly once
//! for the whole batch.

use qcc::compiler::{
    AggregationOptions, CompileError, CompileService, Compiler, CompilerOptions, Strategy,
};
use qcc::control::GrapeLatencyModel;
use qcc::hw::{CalibratedLatencyModel, Device};
use qcc::ir::Circuit;
use qcc::workloads::{ising, qaoa};

fn batch_workloads(n: usize) -> Vec<Circuit> {
    vec![
        qaoa::maxcut_line(n),
        ising::ising_chain(n),
        qaoa::maxcut_reg4(n, 11),
        qaoa::maxcut_line(n), // duplicate on purpose: cache reuse across batch entries
        ising::ising_chain(n),
    ]
}

#[test]
fn batched_compilation_matches_per_circuit_serial_compiles() {
    let circuits = batch_workloads(8);
    let device = Device::transmon_grid(8);
    let model = CalibratedLatencyModel::new(device.limits);
    for strategy in Strategy::all() {
        let options = CompilerOptions::strategy(strategy);
        let batched = Compiler::new(&device, &model)
            .with_threads(4)
            .compile_batch(&circuits, &options);
        assert_eq!(batched.len(), circuits.len());

        let serial = Compiler::new(&device, &model).with_threads(1);
        for (i, (circuit, result)) in circuits.iter().zip(&batched).enumerate() {
            let batch_result = result.as_ref().expect("batch entry compiled");
            let reference = serial.compile(circuit, &options);
            assert_eq!(
                batch_result.total_latency_ns.to_bits(),
                reference.total_latency_ns.to_bits(),
                "{strategy:?}: batch entry {i} drifted from the serial compile"
            );
            assert_eq!(batch_result.latencies.len(), reference.latencies.len());
            for (a, b) in batch_result.latencies.iter().zip(&reference.latencies) {
                assert_eq!(a.to_bits(), b.to_bits(), "{strategy:?}: entry {i}");
            }
            assert_eq!(batch_result.swap_count, reference.swap_count);
        }
    }
}

#[test]
fn batch_shares_the_grape_cache_with_exactly_one_solve_per_key() {
    // Four copies of the paper's triangle: whatever instruction keys the first
    // compile prices, the other three must reuse — across batch entries and
    // across the 4-way thread fan-out.
    let circuits: Vec<Circuit> = (0..4).map(|_| qaoa::paper_triangle_example()).collect();
    let device = Device::transmon_line(3);
    let options = CompilerOptions {
        strategy: Strategy::ClsAggregation,
        aggregation: AggregationOptions::with_width(2),
    };

    let model = GrapeLatencyModel::fast_two_qubit();
    let batched = Compiler::new(&device, &model)
        .with_threads(4)
        .compile_batch(&circuits, &options);
    assert!(batched.iter().all(|r| r.is_ok()));
    assert_eq!(
        model.solve_count(),
        model.cached_entries(),
        "every GRAPE key must be solved exactly once for the whole batch"
    );

    // And the batch answers match a fresh serial compile.
    let serial_model = GrapeLatencyModel::fast_two_qubit();
    let reference = Compiler::new(&device, &serial_model)
        .with_threads(1)
        .compile(&circuits[0], &options);
    for (i, result) in batched.iter().enumerate() {
        let r = result.as_ref().unwrap();
        assert_eq!(
            r.total_latency_ns.to_bits(),
            reference.total_latency_ns.to_bits(),
            "batch entry {i}"
        );
    }
    // The serial run re-solved the same distinct keys the batch solved once.
    assert_eq!(serial_model.solve_count(), model.solve_count());
}

#[test]
fn batch_reports_per_circuit_errors_without_failing_the_rest() {
    let device = Device::transmon_line(3);
    let service = CompileService::new(&device).with_threads(4);
    let circuits = vec![
        qaoa::paper_triangle_example(), // fits
        Circuit::new(6),                // needs 6 qubits: fails
        qaoa::maxcut_line(3),           // fits
    ];
    let results = service.compile_batch(&circuits, &CompilerOptions::strategy(Strategy::Cls));
    assert_eq!(results.len(), 3);
    assert!(results[0].is_ok());
    assert_eq!(
        results[1].as_ref().unwrap_err(),
        &CompileError::DeviceTooSmall {
            needed: 6,
            available: 3
        }
    );
    assert!(results[2].is_ok());
}

#[test]
fn batch_reports_carry_per_pass_timing() {
    let device = Device::transmon_grid(8);
    let service = CompileService::new(&device).with_threads(4);
    let results = service.compile_batch(
        &batch_workloads(8),
        &CompilerOptions::strategy(Strategy::ClsAggregation),
    );
    for result in results {
        let r = result.unwrap();
        assert_eq!(
            r.reports.iter().map(|p| p.pass).collect::<Vec<_>>(),
            Strategy::ClsAggregation.pipeline().pass_names()
        );
        assert!(r.total_pass_time() > std::time::Duration::ZERO);
    }
}
