//! Direct coverage of the `CompilationResult` report helpers
//! (`width_histogram`, `aggregated_instruction_count`,
//! `critical_path_latency_band`), which the figure benches exercise only
//! incidentally.

use qcc::compiler::{AggregationOptions, CompilerOptions, Strategy};
use qcc::compiler::{CompilationResult, CompileService};
use qcc::hw::Device;
use qcc::ir::Circuit;
use qcc::workloads::{qaoa, uccsd};

fn compile(circuit: &Circuit, strategy: Strategy, width: usize) -> CompilationResult {
    let device = Device::transmon_grid(circuit.n_qubits());
    let service = CompileService::new(&device);
    service
        .compile(
            circuit,
            &CompilerOptions {
                strategy,
                aggregation: AggregationOptions::with_width(width),
            },
        )
        .expect("grid device fits the circuit")
}

#[test]
fn width_histogram_counts_every_instruction_and_respects_the_limit() {
    let circuit = uccsd::uccsd_benchmark(4);
    for width in [2, 4] {
        let r = compile(&circuit, Strategy::ClsAggregation, width);
        let hist = r.width_histogram();
        assert_eq!(
            hist.values().sum::<usize>(),
            r.instructions.len(),
            "histogram must partition the instruction stream"
        );
        assert!(
            hist.keys().all(|&w| w >= 1 && w <= width),
            "no instruction may exceed the width limit {width}: {hist:?}"
        );
        for (&w, &count) in &hist {
            assert_eq!(
                r.instructions.iter().filter(|i| i.width() == w).count(),
                count,
                "histogram bucket {w} miscounts"
            );
        }
    }
}

#[test]
fn unaggregated_strategies_report_singleton_widths_and_no_aggregates() {
    let circuit = qaoa::maxcut_line(6);
    let r = compile(&circuit, Strategy::IsaBaseline, 10);
    // The ISA baseline never merges: every instruction is a single gate, so
    // the aggregate count is zero and the histogram holds widths 1 and 2 only.
    assert_eq!(r.aggregated_instruction_count(), 0);
    let hist = r.width_histogram();
    assert!(hist.keys().all(|&w| w == 1 || w == 2), "{hist:?}");
    assert!(hist.contains_key(&1) && hist.contains_key(&2));
}

#[test]
fn aggregated_instruction_count_matches_a_manual_scan() {
    let circuit = qaoa::maxcut_line(6);
    let r = compile(&circuit, Strategy::ClsAggregation, 10);
    let manual = r.instructions.iter().filter(|i| i.gate_count() > 1).count();
    assert_eq!(r.aggregated_instruction_count(), manual);
    assert!(manual > 0, "MAXCUT must aggregate something");
    // Consistency with the aggregation statistics: merges happened.
    assert!(r.aggregation.merges > 0 || r.aggregated_instruction_count() > 0);
}

#[test]
fn critical_path_band_brackets_the_observed_latencies() {
    let circuit = qaoa::maxcut_line(6);
    for strategy in Strategy::all() {
        let r = compile(&circuit, strategy, 10);
        let (min, max) = r
            .critical_path_latency_band()
            .expect("non-empty schedule has a critical path");
        assert!(min <= max, "{strategy:?}: band inverted ({min}, {max})");
        let observed_max = r.latencies.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            max <= observed_max + 1e-12,
            "{strategy:?}: band max {max} exceeds any latency {observed_max}"
        );
        assert!(
            min >= 0.0 && max <= r.total_latency_ns + 1e-9,
            "{strategy:?}: no single instruction outlasts the schedule"
        );
    }
}

#[test]
fn critical_path_band_is_none_for_an_empty_program() {
    let r = compile(&Circuit::new(2), Strategy::IsaBaseline, 10);
    assert!(r.instructions.is_empty());
    assert_eq!(r.critical_path_latency_band(), None);
    assert!(r.width_histogram().is_empty());
    assert_eq!(r.aggregated_instruction_count(), 0);
}
