//! Compile a slice of the Table 3 benchmark suite under every strategy and
//! report normalized latencies plus aggregation statistics — a small-scale
//! version of the Fig. 9 experiment suited to a laptop.
//!
//! Run with `cargo run --release --example benchmark_sweep`. Defaults to the
//! reduced-size suite; set `QCC_BENCH_SCALE=full` for the paper's full sizes.

use qcc::compiler::{AggregationOptions, Compiler, CompilerOptions, Strategy};
use qcc::hw::{CalibratedLatencyModel, Device};
use qcc::workloads::{standard_suite, SuiteScale};

fn main() {
    let scale = match std::env::var("QCC_BENCH_SCALE") {
        Ok(v) if v.trim().eq_ignore_ascii_case("full") => SuiteScale::Full,
        _ => SuiteScale::Reduced,
    };
    let suite = standard_suite(scale, 7);
    println!(
        "{:<16} {:>7} {:>7} {:>8} {:>8} {:>8} {:>8}",
        "benchmark", "qubits", "gates", "ISA(ns)", "CLS", "CLS+Agg", "swaps"
    );
    for bench in &suite {
        let device = Device::transmon_grid(bench.circuit.n_qubits());
        let model = CalibratedLatencyModel::new(device.limits);
        let compiler = Compiler::new(&device, &model);
        let isa = compiler.compile(
            &bench.circuit,
            &CompilerOptions::strategy(Strategy::IsaBaseline),
        );
        let cls = compiler.compile(&bench.circuit, &CompilerOptions::strategy(Strategy::Cls));
        let full = compiler.compile(
            &bench.circuit,
            &CompilerOptions {
                strategy: Strategy::ClsAggregation,
                aggregation: AggregationOptions::with_width(10),
            },
        );
        println!(
            "{:<16} {:>7} {:>7} {:>8.0} {:>8.3} {:>8.3} {:>8}",
            bench.name,
            bench.n_qubits(),
            bench.gate_count(),
            isa.total_latency_ns,
            cls.total_latency_ns / isa.total_latency_ns,
            full.total_latency_ns / isa.total_latency_ns,
            full.swap_count,
        );
    }
    println!("\nLower is better (normalized to the gate-based ISA baseline).");
}
