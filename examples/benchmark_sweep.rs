//! Compile a slice of the Table 3 benchmark suite under every strategy and
//! report normalized latencies plus aggregation statistics — a small-scale
//! version of the Fig. 9 experiment suited to a laptop.
//!
//! Run with `cargo run --release --example benchmark_sweep`. Defaults to the
//! reduced-size suite; set `QCC_BENCH_SCALE=full` for the paper's full sizes
//! (any other value is a startup error). Set `QCC_STRATEGY=<name>` (e.g.
//! `cls`, `cls+aggregation` — any name `Strategy::from_str` accepts) to sweep
//! a single strategy normalized against the always-included ISA baseline,
//! with no code edits. A partitioned column rides along: the widest suite
//! circuit is also compiled cut into `QCC_PARTITIONS` regions (default 2; any
//! non-integer value is a startup error).

use qcc::compiler::{
    AggregationOptions, CompileService, CompilerOptions, PartitionOptions, Priority, ServeConfig,
    Strategy, SubmitOptions,
};
use qcc::workloads::{standard_suite, SuiteScale};
use qcc_bench::partitions_from_env;

fn main() {
    let scale = SuiteScale::parse_env(
        std::env::var("QCC_BENCH_SCALE").ok().as_deref(),
        SuiteScale::Reduced,
    )
    .unwrap_or_else(|e| panic!("{e}"));
    // The reported strategies: the QCC_STRATEGY override, or the classic
    // ISA / CLS / CLS+Aggregation sweep. The baseline always compiles so the
    // other columns can be normalized to it.
    let reported: Vec<Strategy> = match std::env::var("QCC_STRATEGY") {
        Ok(v) if !v.trim().is_empty() => {
            let chosen: Strategy = v
                .parse()
                .unwrap_or_else(|e| panic!("invalid QCC_STRATEGY value '{v}': {e}"));
            vec![chosen]
        }
        _ => vec![Strategy::Cls, Strategy::ClsAggregation],
    };

    let suite = standard_suite(scale, 7);
    print!(
        "{:<16} {:>7} {:>7} {:>9}",
        "benchmark", "qubits", "gates", "ISA(ns)"
    );
    for s in &reported {
        print!(" {:>16}", s.name());
    }
    println!(" {:>6}", "swaps");

    for bench in &suite {
        let device = qcc::hw::Device::transmon_grid(bench.circuit.n_qubits());
        let service = CompileService::new(&device);
        // One serving session per benchmark: the latency-defining baseline
        // goes in as interactive traffic, the sweep strategies as batch — all
        // stream through the staged pass pipeline concurrently.
        let (isa, swept) = service.serve(ServeConfig::default(), |handle| {
            let isa_ticket = handle
                .submit(
                    &bench.circuit,
                    &CompilerOptions::strategy(Strategy::IsaBaseline),
                    SubmitOptions::default().priority(Priority::Interactive),
                )
                .expect("default queue has room");
            let sweep_tickets: Vec<_> = reported
                .iter()
                .map(|&strategy| {
                    handle
                        .submit(
                            &bench.circuit,
                            &CompilerOptions {
                                strategy,
                                aggregation: AggregationOptions::with_width(10),
                            },
                            SubmitOptions::default().priority(Priority::Batch),
                        )
                        .expect("default queue has room")
                })
                .collect();
            let isa = handle.wait(isa_ticket).expect("device sized for benchmark");
            let swept: Vec<_> = sweep_tickets
                .into_iter()
                .map(|t| handle.wait(t).expect("device sized for benchmark"))
                .collect();
            (isa, swept)
        });
        print!(
            "{:<16} {:>7} {:>7} {:>9.0}",
            bench.name,
            bench.n_qubits(),
            bench.gate_count(),
            isa.total_latency_ns,
        );
        let mut swaps = isa.swap_count;
        for r in &swept {
            swaps = r.swap_count;
            print!(" {:>16.3}", r.total_latency_ns / isa.total_latency_ns);
        }
        println!(" {:>6}", swaps);
    }
    println!("\nLower is better (normalized to the gate-based ISA baseline).");

    // Partitioned lane on the widest circuit of the suite: cut into k
    // regions, compiled region-parallel, stitched at the seams.
    let k = partitions_from_env(2);
    let widest = suite
        .iter()
        .max_by_key(|b| b.n_qubits())
        .expect("suite is non-empty");
    let device = qcc::hw::Device::transmon_grid(widest.n_qubits());
    let service = CompileService::new(&device);
    let options = CompilerOptions::strategy(Strategy::ClsAggregation);
    let whole = service
        .compile(&widest.circuit, &options)
        .expect("device sized for benchmark");
    let part = service
        .compile_partitioned(&widest.circuit, &options, &PartitionOptions::new(k))
        .expect("device sized for benchmark");
    let summary = part.partition.as_ref().expect("partitioned telemetry");
    println!(
        "\nPartitioned lane ({}, k={k}): {} regions, cut weight {:.1}, \
         stitch {:.1} µs, makespan {:.3}× whole-circuit",
        widest.name,
        summary.regions.len(),
        summary.cut_weight,
        summary.stitch_wall_time.as_secs_f64() * 1e6,
        part.total_latency_ns / whole.total_latency_ns,
    );
}
