//! Compile a slice of the Table 3 benchmark suite under every strategy and
//! report normalized latencies plus aggregation statistics — a small-scale
//! version of the Fig. 9 experiment suited to a laptop.
//!
//! Run with `cargo run --release --example benchmark_sweep`. Defaults to the
//! reduced-size suite; set `QCC_BENCH_SCALE=full` for the paper's full sizes.
//! Set `QCC_STRATEGY=<name>` (e.g. `cls`, `cls+aggregation` — any name
//! `Strategy::from_str` accepts) to sweep a single strategy normalized against
//! the always-included ISA baseline, with no code edits.

use qcc::compiler::{AggregationOptions, CompileService, CompilerOptions, Strategy};
use qcc::workloads::{standard_suite, SuiteScale};

fn main() {
    let scale = match std::env::var("QCC_BENCH_SCALE") {
        Ok(v) if v.trim().eq_ignore_ascii_case("full") => SuiteScale::Full,
        _ => SuiteScale::Reduced,
    };
    // The reported strategies: the QCC_STRATEGY override, or the classic
    // ISA / CLS / CLS+Aggregation sweep. The baseline always compiles so the
    // other columns can be normalized to it.
    let reported: Vec<Strategy> = match std::env::var("QCC_STRATEGY") {
        Ok(v) if !v.trim().is_empty() => {
            let chosen: Strategy = v
                .parse()
                .unwrap_or_else(|e| panic!("invalid QCC_STRATEGY: {e}"));
            vec![chosen]
        }
        _ => vec![Strategy::Cls, Strategy::ClsAggregation],
    };

    let suite = standard_suite(scale, 7);
    print!(
        "{:<16} {:>7} {:>7} {:>9}",
        "benchmark", "qubits", "gates", "ISA(ns)"
    );
    for s in &reported {
        print!(" {:>16}", s.name());
    }
    println!(" {:>6}", "swaps");

    for bench in &suite {
        let device = qcc::hw::Device::transmon_grid(bench.circuit.n_qubits());
        let service = CompileService::new(&device);
        let isa = service
            .compile(
                &bench.circuit,
                &CompilerOptions::strategy(Strategy::IsaBaseline),
            )
            .expect("device sized for benchmark");
        print!(
            "{:<16} {:>7} {:>7} {:>9.0}",
            bench.name,
            bench.n_qubits(),
            bench.gate_count(),
            isa.total_latency_ns,
        );
        let mut swaps = isa.swap_count;
        for &strategy in &reported {
            let r = service
                .compile(
                    &bench.circuit,
                    &CompilerOptions {
                        strategy,
                        aggregation: AggregationOptions::with_width(10),
                    },
                )
                .expect("device sized for benchmark");
            swaps = r.swap_count;
            print!(" {:>16.3}", r.total_latency_ns / isa.total_latency_ns);
        }
        println!(" {:>6}", swaps);
    }
    println!("\nLower is better (normalized to the gate-based ISA baseline).");
}
