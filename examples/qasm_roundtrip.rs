//! Interoperability example: parse an OpenQASM 2.0 program, compile it, and
//! emit the routed, aggregated program back as QASM plus a schedule listing.
//!
//! Run with `cargo run --release --example qasm_roundtrip`.

use qcc::compiler::{compile_with_default_model, CompilerOptions, Strategy};
use qcc::hw::Device;
use qcc::ir::qasm;

const PROGRAM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[4];
creg c[4];
h q[0];
h q[1];
h q[2];
h q[3];
cx q[0],q[1];
rz(0.85) q[1];
cx q[0],q[1];
cx q[2],q[3];
rz(0.85) q[3];
cx q[2],q[3];
cx q[1],q[2];
rz(0.85) q[2];
cx q[1],q[2];
rx(1.1) q[0];
rx(1.1) q[1];
rx(1.1) q[2];
rx(1.1) q[3];
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = qasm::parse(PROGRAM)?;
    println!(
        "Parsed {} gates on {} qubits.",
        circuit.len(),
        circuit.n_qubits()
    );

    let device = Device::transmon_line(4);
    let result = compile_with_default_model(
        &circuit,
        &device,
        &CompilerOptions::strategy(Strategy::ClsAggregation),
    );
    println!(
        "Compiled to {} aggregated instructions, total pulse latency {:.1} ns.\n",
        result.instructions.len(),
        result.total_latency_ns
    );

    println!("Schedule (start ns, duration ns, instruction):");
    for entry in &result.schedule.entries {
        let inst = &result.instructions[entry.index];
        println!("  {:>7.1}  {:>6.1}  {}", entry.start, entry.duration, inst);
    }

    // Emit the flattened physical program back as QASM.
    let mut flat = qcc::ir::Circuit::new(device.n_qubits());
    for inst in &result.instructions {
        for gate in &inst.constituents {
            flat.push_instruction(gate.clone());
        }
    }
    println!(
        "\nRouted physical program as OpenQASM:\n{}",
        qasm::write(&flat)
    );
    Ok(())
}
