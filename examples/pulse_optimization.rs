//! Drive the GRAPE optimal-control unit directly: find minimal-duration pulses
//! for an iSWAP and for a CNOT–Rz–CNOT diagonal block, verify them against the
//! target unitaries, and dump the pulse shapes as CSV (cf. Fig. 4c/4d).
//!
//! Run with `cargo run --release --example pulse_optimization`.

use qcc::control::{verify_pulse, GrapeConfig, GrapeOptimizer, TransmonSystem};
use qcc::hw::ControlLimits;
use qcc::math::pauli;

fn main() {
    let limits = ControlLimits::asplos19();
    let system = TransmonSystem::new(2, &[(0, 1)], limits);
    let optimizer = GrapeOptimizer::new(GrapeConfig::default());

    for (name, target, guess_ns) in [
        ("iSWAP", pauli::iswap(), 20.0),
        ("ZZ(1.3) diagonal block", pauli::zz_rotation(1.3), 30.0),
        ("CNOT", pauli::cnot(), 45.0),
    ] {
        let (duration, result) = optimizer.minimize_time(&system, &target, guess_ns, 3);
        let verification = verify_pulse(&system, &result, &target, 0.99);
        println!(
            "{name:<24} pulse {duration:>6.1} ns   fidelity {:.4}   verified: {}",
            verification.fidelity, verification.passed
        );
        if name == "iSWAP" {
            println!(
                "\nPulse program for the iSWAP (CSV):\n{}",
                result.pulse.to_csv()
            );
        }
    }
}
