//! Quick start: compile the paper's worked QAOA example (§3.1 / Fig. 4) with
//! every strategy and print the latency comparison.
//!
//! Run with `cargo run --release --example quickstart`.

use qcc::compiler::{Compiler, CompilerOptions, Strategy};
use qcc::hw::{CalibratedLatencyModel, Device};
use qcc::workloads::qaoa;

fn main() {
    let circuit = qaoa::paper_triangle_example();
    println!(
        "Input circuit: {} qubits, {} gates",
        circuit.n_qubits(),
        circuit.len()
    );

    let device = Device::transmon_line(3);
    let model = CalibratedLatencyModel::new(device.limits);
    let compiler = Compiler::new(&device, &model);

    let mut baseline = 0.0;
    println!(
        "\n{:<18} {:>12} {:>10} {:>10}",
        "strategy", "latency (ns)", "instrs", "speedup"
    );
    for strategy in Strategy::all() {
        let result = compiler.compile(&circuit, &CompilerOptions::strategy(strategy));
        if strategy == Strategy::IsaBaseline {
            baseline = result.total_latency_ns;
        }
        println!(
            "{:<18} {:>12.1} {:>10} {:>9.2}x",
            strategy.name(),
            result.total_latency_ns,
            result.instructions.len(),
            baseline / result.total_latency_ns
        );
    }

    // The full flow again, with its per-pass breakdown (instruction counts
    // after each pass of the preset recipe, plus wall-clock timing).
    let result = compiler.compile(
        &circuit,
        &CompilerOptions::strategy(Strategy::ClsAggregation),
    );
    println!("\nPass pipeline of {}:", result.strategy.name());
    for report in &result.reports {
        println!(
            "  {:<24} {:>4} instrs {:>4} gates  {:>9.1?}",
            report.pass, report.instructions, report.gates, report.wall_time
        );
    }

    // Verify that the full flow preserved the circuit semantics.
    let check = qcc::compiler::verify_compilation(&circuit, &result);
    println!(
        "\nSemantic verification of CLS+Aggregation: {}",
        if check.equivalent {
            "equivalent"
        } else {
            "MISMATCH"
        }
    );
}
