//! Quick start: compile the paper's worked QAOA example (§3.1 / Fig. 4) with
//! every strategy, print the latency comparison, and show where the GRAPE
//! solves land in the per-pass timing breakdown.
//!
//! Run with `cargo run --release --example quickstart`.

use qcc::compiler::{AggregationOptions, Compiler, CompilerOptions, Strategy};
use qcc::control::GrapeLatencyModel;
use qcc::hw::{CalibratedLatencyModel, Device};
use qcc::workloads::qaoa;

fn main() {
    let circuit = qaoa::paper_triangle_example();
    println!(
        "Input circuit: {} qubits, {} gates",
        circuit.n_qubits(),
        circuit.len()
    );

    let device = Device::transmon_line(3);
    let model = CalibratedLatencyModel::new(device.limits);
    let compiler = Compiler::new(&device, &model);

    let mut baseline = 0.0;
    println!(
        "\n{:<18} {:>12} {:>10} {:>10}",
        "strategy", "latency (ns)", "instrs", "speedup"
    );
    for strategy in Strategy::all() {
        let result = compiler.compile(&circuit, &CompilerOptions::strategy(strategy));
        if strategy == Strategy::IsaBaseline {
            baseline = result.total_latency_ns;
        }
        println!(
            "{:<18} {:>12.1} {:>10} {:>9.2}x",
            strategy.name(),
            result.total_latency_ns,
            result.instructions.len(),
            baseline / result.total_latency_ns
        );
    }

    // The full flow again, with its per-pass breakdown (instruction counts
    // after each pass of the preset recipe, plus wall-clock timing).
    let result = compiler.compile(
        &circuit,
        &CompilerOptions::strategy(Strategy::ClsAggregation),
    );
    println!("\nPass pipeline of {}:", result.strategy.name());
    for report in &result.reports {
        println!(
            "  {:<24} {:>4} instrs {:>4} gates  {:>9.1?}",
            report.pass, report.instructions, report.gates, report.wall_time
        );
    }

    // The same compile priced by the real GRAPE optimal-control unit: the
    // per-pass reports now attribute the solves (and cache hits) to the pass
    // that triggered them, so the timing breakdown shows where they land.
    let grape = GrapeLatencyModel::fast_two_qubit();
    let grape_compiler = Compiler::new(&device, &grape);
    let grape_result = grape_compiler.compile(
        &circuit,
        &CompilerOptions {
            strategy: Strategy::ClsAggregation,
            aggregation: AggregationOptions::with_width(2),
        },
    );
    println!(
        "\nGRAPE-priced pipeline ({} solves, {} ns total):",
        grape.solve_count(),
        grape_result.total_latency_ns.round()
    );
    for report in &grape_result.reports {
        let pricing = report
            .pricing
            .map(|p| format!("{:>3} solves {:>3} cache hits", p.solves, p.cache_hits()))
            .unwrap_or_default();
        println!(
            "  {:<24} {:>4} instrs  {:>9.1?}  {pricing}",
            report.pass, report.instructions, report.wall_time
        );
    }

    // Verify that the full flow preserved the circuit semantics.
    let check = qcc::compiler::verify_compilation(&circuit, &result);
    println!(
        "\nSemantic verification of CLS+Aggregation: {}",
        if check.equivalent {
            "equivalent"
        } else {
            "MISMATCH"
        }
    );
}
