//! Quick start: compile the paper's worked QAOA example (§3.1 / Fig. 4) with
//! every strategy through the serving front door, stream the per-pass
//! progress of the full flow, show where the GRAPE solves land in the
//! per-pass timing breakdown, cut a wide circuit into regions compiled in
//! parallel, and dispatch a request mix across a heterogeneous backend fleet.
//!
//! Run with `cargo run --release --example quickstart`.

use qcc::compiler::{
    AggregationOptions, CompileService, CompilerOptions, Fleet, PartitionOptions, PassProgress,
    ServeConfig, Strategy, SubmitOptions,
};
use qcc::control::GrapeLatencyModel;
use qcc::hw::{Backend, ControlLimits, Device, Topology};
use qcc::workloads::{ising, qaoa};
use threadpool::mpmc;

fn main() {
    let circuit = qaoa::paper_triangle_example();
    println!(
        "Input circuit: {} qubits, {} gates",
        circuit.n_qubits(),
        circuit.len()
    );

    let device = Device::transmon_line(3);
    let service = CompileService::new(&device);

    // One serving session sweeps every strategy: submit all five requests up
    // front (they stream through the staged pass pipeline concurrently), then
    // claim the results in strategy order. The full flow also streams one
    // progress event per pass into a bounded channel.
    let (progress_tx, progress_rx) = mpmc::bounded::<PassProgress>(32);
    let results = service.serve(ServeConfig::default(), |handle| {
        let tickets: Vec<_> = Strategy::all()
            .iter()
            .map(|&strategy| {
                let submit = if strategy == Strategy::ClsAggregation {
                    SubmitOptions::default().progress(progress_tx.clone())
                } else {
                    SubmitOptions::default()
                };
                handle
                    .submit(&circuit, &CompilerOptions::strategy(strategy), submit)
                    .expect("default queue has room for five requests")
            })
            .collect();
        tickets
            .into_iter()
            .map(|t| handle.wait(t).expect("line device fits the example"))
            .collect::<Vec<_>>()
    });
    drop(progress_tx);

    let mut baseline = 0.0;
    println!(
        "\n{:<18} {:>12} {:>10} {:>10}",
        "strategy", "latency (ns)", "instrs", "speedup"
    );
    for (strategy, result) in Strategy::all().iter().zip(&results) {
        if *strategy == Strategy::IsaBaseline {
            baseline = result.total_latency_ns;
        }
        println!(
            "{:<18} {:>12.1} {:>10} {:>9.2}x",
            strategy.name(),
            result.total_latency_ns,
            result.instructions.len(),
            baseline / result.total_latency_ns
        );
    }

    // The streamed per-pass progress of the full flow: instruction counts
    // after each pass of the preset recipe, plus wall-clock timing, delivered
    // while the request was in flight.
    println!(
        "\nStreamed pass progress of {}:",
        Strategy::ClsAggregation.name()
    );
    for event in progress_rx.drain() {
        let report = event.report;
        println!(
            "  {:<24} {:>4} instrs {:>4} gates  {:>9.1?}",
            report.pass, report.instructions, report.gates, report.wall_time
        );
    }

    // The same compile priced by the real GRAPE optimal-control unit: the
    // per-pass reports now attribute the solves (and cache hits) to the pass
    // that triggered them, so the timing breakdown shows where they land. The
    // service borrows the model, so its counters stay readable out here.
    let grape = GrapeLatencyModel::fast_two_qubit();
    let grape_service = CompileService::with_model(&device, Box::new(&grape));
    // Persistent cache tier: when QCC_CACHE_DIR names a directory, warm-start
    // the GRAPE and result caches from it before compiling and snapshot them
    // back afterwards — a second run of this example then re-solves nothing.
    let cache_dir = qcc::compiler::cache_dir_from_env();
    if let Some(dir) = &cache_dir {
        let loaded = grape_service.warm_start_or_cold(dir);
        println!(
            "\nWarm start from {}: {loaded} cached records",
            dir.display()
        );
    }
    let grape_result = grape_service
        .compile(
            &circuit,
            &CompilerOptions {
                strategy: Strategy::ClsAggregation,
                aggregation: AggregationOptions::with_width(2),
            },
        )
        .expect("line device fits the example");
    println!(
        "\nGRAPE-priced pipeline ({} solves, {} ns total):",
        grape.solve_count(),
        grape_result.total_latency_ns.round()
    );
    for report in &grape_result.reports {
        let pricing = report
            .pricing
            .map(|p| format!("{:>3} solves {:>3} cache hits", p.solves, p.cache_hits()))
            .unwrap_or_default();
        println!(
            "  {:<24} {:>4} instrs  {:>9.1?}  {pricing}",
            report.pass, report.instructions, report.wall_time
        );
    }
    println!("GRAPE solves this run: {}", grape.solve_count());
    if let Some(dir) = &cache_dir {
        let written = grape_service
            .snapshot_to(dir)
            .expect("QCC_CACHE_DIR is writable");
        println!("Snapshot: {written} records -> {}", dir.display());
    }

    // Verify that the full flow preserved the circuit semantics.
    let full = &results[Strategy::all()
        .iter()
        .position(|&s| s == Strategy::ClsAggregation)
        .expect("full flow is in the sweep")];
    let check = qcc::compiler::verify_compilation(&circuit, full);
    println!(
        "\nSemantic verification of CLS+Aggregation: {}",
        if check.equivalent {
            "equivalent"
        } else {
            "MISMATCH"
        }
    );

    // Service telemetry: cache activity plus the request counters of the
    // serving session above.
    let stats = service.compile_cache_stats();
    println!(
        "\nService telemetry: {} submitted, {} completed, {} rejected, \
         {} deadline-expired; cache {} hits / {} misses / {} entries",
        stats.submitted,
        stats.completed,
        stats.rejected,
        stats.deadline_expired,
        stats.hits,
        stats.misses,
        stats.entries
    );

    // Partitioned compilation of a wide circuit: the qubit-interaction graph
    // is cut into weakly coupled regions, the regions compile in parallel,
    // and the schedules are stitched at the cut-set seams.
    let wide = qaoa::maxcut_reg4(16, 11);
    let wide_device = Device::transmon_grid(wide.n_qubits());
    let wide_service = CompileService::new(&wide_device);
    let wide_options = CompilerOptions::strategy(Strategy::ClsAggregation);
    let whole = wide_service
        .compile(&wide, &wide_options)
        .expect("grid device fits the wide circuit");
    let part = wide_service
        .compile_partitioned(&wide, &wide_options, &PartitionOptions::new(4))
        .expect("grid device fits the wide circuit");
    let summary = part.partition.as_ref().expect("partitioned telemetry");
    println!(
        "\nPartitioned compile of {}-qubit MAXCUT (k=4): cut weight {:.1}, \
         {} boundary instrs, stitch {:.1} µs",
        wide.n_qubits(),
        summary.cut_weight,
        summary.cut_instructions,
        summary.stitch_wall_time.as_secs_f64() * 1e6,
    );
    for (i, region) in summary.regions.iter().enumerate() {
        println!(
            "  region {i}: {:>2} qubits {:>3} instrs {:>3} gates  {:>9.1?}  {:?}",
            region.qubits.len(),
            region.instructions,
            region.gates,
            region.wall_time,
            region.qubits,
        );
    }
    println!(
        "  makespan {:.1} ns vs whole-circuit {:.1} ns ({:.3}x)",
        part.total_latency_ns,
        whole.total_latency_ns,
        part.total_latency_ns / whole.total_latency_ns,
    );

    // A heterogeneous fleet: the cost-model router prices each request on
    // every backend (ISA pricing over the routed circuit) and dispatches to
    // the lowest estimated latency + backlog, scaled by capacity weight.
    let limits = ControlLimits::asplos19();
    let backends = vec![
        Backend::calibrated("line-6", Device::transmon_line(6)),
        Backend::calibrated(
            "grid-6-fast",
            Device::transmon_with(Topology::near_square_grid(6), limits.scaled_drives(1.25)),
        ),
        Backend::calibrated(
            "wide-8",
            Device::transmon_with(Topology::AllToAll(8), limits),
        )
        .with_capacity_weight(2.0),
    ];
    let mut fleet = Fleet::new(&backends);
    let mix = [
        ising::ising_chain(4),
        qaoa::maxcut_line(6),
        ising::ising_chain(6),
        qaoa::maxcut_reg4(6, 7),
        ising::ising_chain(5),
    ];
    let full_flow = CompilerOptions::strategy(Strategy::ClsAggregation);
    let tickets: Vec<_> = mix.iter().map(|c| fleet.submit(c, &full_flow)).collect();
    fleet.run();
    println!("\nFleet dispatch of {} requests:", mix.len());
    for decision in fleet.routing_log() {
        let quotes: Vec<String> = decision
            .candidates
            .iter()
            .map(|q| format!("{} {:.0}ns", q.backend, q.score))
            .collect();
        println!(
            "  ticket {:?} -> {:<12} (scores: {})",
            decision.ticket,
            decision.backend,
            quotes.join(", ")
        );
    }
    for stats in fleet.stats() {
        println!(
            "  {:<12} submitted {:>2}  completed {:>2}  relocated in/out {}/{}",
            stats.backend,
            stats.submitted,
            stats.completed,
            stats.relocated_in,
            stats.relocated_out,
        );
    }
    for ticket in tickets {
        fleet.wait(ticket).expect("fleet devices fit the mix");
    }
}
